package server

// Regression pins for the batch error paths PR 10 fixed: mid-flight
// cancellation must never ship an empty item, batch item errors carry
// the full single-compose error shape (byte parity modulo framing),
// traced batch items carry the ingress request ID, and the pooled body
// buffers survive a concurrent large/small storm without cross-request
// corruption or unbounded retention.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mapcomp/internal/par"
)

// TestBatchCancellationMarksUnrunItems pins satellite 1: a client that
// disconnects mid-batch used to leave every unprocessed item as a bare
// `{}` — neither response nor error. Now each unrun item carries an
// explicit cancellation error and the envelope says Canceled.
func TestBatchCancellationMarksUnrunItems(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)

	s := newTestServer(t)
	started := make(chan struct{})
	s.composeHook = func(ctx context.Context) {
		select {
		case <-started:
		default:
			close(started)
		}
		<-ctx.Done()
	}
	defer func() { s.composeHook = nil }()

	// Eight valid cache-miss pairs: with one worker, item 0 blocks in
	// the hook and items 1..7 are still queued when the context dies.
	var items []string
	for i := 0; i < 8; i++ {
		items = append(items, `{"from":"original","to":"split"}`)
	}
	body := `{"requests":[` + strings.Join(items, ",") + `]}`

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/compose/batch", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeHTTP(rec, req)
	}()
	<-started
	cancel()
	<-done

	if rec.Code != http.StatusOK {
		t.Fatalf("canceled batch: %d %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Canceled {
		t.Fatal("envelope does not report cancellation")
	}
	if len(resp.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(resp.Results))
	}
	swept := 0
	for i, item := range resp.Results {
		if item.Response == nil && item.Error == nil {
			t.Fatalf("item %d shipped with neither response nor error: %s", i, rec.Body)
		}
		if item.Error != nil && strings.Contains(item.Error.Error, "batch canceled before this item ran") {
			if item.Status != http.StatusGatewayTimeout {
				t.Fatalf("swept item %d has status %d, want 504", i, item.Status)
			}
			if item.Error.RequestID != rec.Header().Get("X-Request-Id") {
				t.Fatalf("swept item %d request_id %q, header %q",
					i, item.Error.RequestID, rec.Header().Get("X-Request-Id"))
			}
			swept++
		}
	}
	if swept == 0 {
		t.Fatalf("no item carries the cancellation sweep error: %s", rec.Body)
	}
}

// TestBatchItemErrorParity pins satellite 2: a failing pair inside a
// batch must produce the exact single-compose error document — same
// fields, same bytes once the per-request ID is equalized — plus the
// item-level status the single request carried as its HTTP status.
func TestBatchItemErrorParity(t *testing.T) {
	s := newTestServer(t)

	single := do(t, s, "POST", "/v1/compose", `{"from":"original","to":"nowhere"}`)
	if single.Code != http.StatusNotFound {
		t.Fatalf("single compose: %d %s", single.Code, single.Body)
	}

	batch := do(t, s, "POST", "/v1/compose/batch", `{"requests":[{"from":"original","to":"nowhere"}]}`)
	if batch.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", batch.Code, batch.Body)
	}
	var env struct {
		Results []struct {
			Status int             `json:"status"`
			Error  json.RawMessage `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(batch.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Results) != 1 || env.Results[0].Error == nil {
		t.Fatalf("batch shape: %s", batch.Body)
	}
	if env.Results[0].Status != single.Code {
		t.Fatalf("batch item status %d, single HTTP status %d", env.Results[0].Status, single.Code)
	}

	// Byte parity modulo framing: decode both, equalize request IDs,
	// re-encode through the canonical encoder, require identical bytes.
	var singleErr, itemErr ErrorJSON
	if err := json.Unmarshal(single.Body.Bytes(), &singleErr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(env.Results[0].Error, &itemErr); err != nil {
		t.Fatal(err)
	}
	if itemErr.RequestID != batch.Header().Get("X-Request-Id") {
		t.Fatalf("batch item request_id %q, header %q", itemErr.RequestID, batch.Header().Get("X-Request-Id"))
	}
	singleErr.RequestID, itemErr.RequestID = "", ""
	if !reflect.DeepEqual(singleErr, itemErr) {
		t.Fatalf("batch item error diverges from single compose error:\nitem   %#v\nsingle %#v", itemErr, singleErr)
	}
	a, err := marshalWire(&singleErr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := marshalWire(&itemErr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("re-encoded error bytes diverge:\nitem   %s\nsingle %s", b, a)
	}
}

// TestBatchTraceCarriesRequestID pins satellite 3: traced batch items
// used to stamp their trace with an empty request ID. The trace must
// carry the same X-Request-Id the response headers advertise.
func TestBatchTraceCarriesRequestID(t *testing.T) {
	s := newTestServer(t)
	rec := do(t, s, "POST", "/v1/compose/batch",
		`{"requests":[{"from":"original","to":"split","trace":true}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Response == nil || resp.Results[0].Response.Trace == nil {
		t.Fatalf("traced batch shape: %s", rec.Body)
	}
	id := rec.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("no X-Request-Id header")
	}
	if got := resp.Results[0].Response.Trace.RequestID; got != id {
		t.Fatalf("trace request_id %q, header %q", got, id)
	}
}

// TestPooledBufferStorm pins satellite 4: pooled body buffers are
// shared across requests, and the compose fast path reads from them
// zero-copy. A concurrent storm of oversized batch bodies interleaved
// with tiny compose bodies must produce only correct responses (no
// cross-request corruption), and the >64KiB buffers must not be
// retained by the pool afterwards.
func TestPooledBufferStorm(t *testing.T) {
	s := newTestServer(t)
	// Prime the cache so the tiny composes ride the zero-copy probe.
	if rec := do(t, s, "POST", "/v1/compose", `{"from":"original","to":"split"}`); rec.Code != http.StatusOK {
		t.Fatalf("prime: %d %s", rec.Code, rec.Body)
	}

	// One batch body well past maxPooledBody: 512 items, each padded
	// with an unknown field so the body tops 100KiB.
	pad := strings.Repeat("x", 200)
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i < 512; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"from":"original","to":"split","pad%d":"%s"}`, i, pad)
	}
	sb.WriteString(`]}`)
	bigBody := sb.String()
	if len(bigBody) <= maxPooledBody {
		t.Fatalf("test body is %d bytes, need > %d", len(bigBody), maxPooledBody)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				rec := do(t, s, "POST", "/v1/compose/batch", bigBody)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("batch: %d %s", rec.Code, rec.Body.Bytes()[:200])
					return
				}
				var resp BatchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if len(resp.Results) != 512 {
					errs <- fmt.Errorf("batch returned %d results", len(resp.Results))
					return
				}
				for _, item := range resp.Results {
					if item.Response == nil || item.Response.From != "original" || item.Response.To != "split" {
						errs <- fmt.Errorf("corrupted batch item: %+v", item)
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				rec := do(t, s, "POST", "/v1/compose", `{"from":"original","to":"split"}`)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("compose: %d %s", rec.Code, rec.Body)
					return
				}
				var resp ComposeResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if resp.From != "original" || resp.To != "split" {
					errs <- fmt.Errorf("corrupted compose response: %+v", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Retention: drain the pool. putBodyBuf drops buffers whose capacity
	// grew past maxPooledBody, so nothing oversized may come back out.
	for i := 0; i < 64; i++ {
		buf := bodyBufs.Get().(*bytes.Buffer)
		if buf.Cap() > maxPooledBody {
			t.Fatalf("pool retained a %d-byte buffer (cap %d > %d)", buf.Len(), buf.Cap(), maxPooledBody)
		}
	}
}
