package obs

import (
	"context"
	"sync"
	"time"
)

// Stage is one named timing inside a traced request: an ELIMINATE
// strategy, a chain hop, a WAL fsync.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace collects named stage timings for a single request. It is
// carried in the context (WithTrace/TraceFrom) and every method is safe
// on a nil receiver, so instrumented code calls TraceFrom(ctx).Observe
// unconditionally — untraced requests (the overwhelmingly common case)
// pay one context probe and a nil check, no allocation, no lock.
//
// Stages append under a mutex because a traced compose can fan out
// (batch items, rewarm) — traced requests are the rare diagnostic case,
// so the lock is never on the hot path.
type Trace struct {
	mu     sync.Mutex
	stages []Stage
}

type traceKeyType struct{}

var traceKey traceKeyType

// WithTrace returns a context carrying a fresh Trace, plus the trace.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	tr := &Trace{}
	return context.WithValue(ctx, traceKey, tr), tr
}

// TraceFrom returns the context's Trace, or nil if the request is not
// being traced. The nil result is usable: all Trace methods no-op on
// nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// Observe appends a named stage duration. No-op on a nil trace.
func (t *Trace) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Dur: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in observation order.
// Nil-safe (returns nil).
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}
