package obs

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundsRoundTrip pins the log-linear index math: every
// bucket's [lower, upper] range maps back to that bucket, the ranges
// tile the value space with no gaps or overlaps, and the relative
// bucket width never exceeds 1/subBuckets.
func TestBucketBoundsRoundTrip(t *testing.T) {
	prevUpper := uint64(0)
	for idx := 0; idx < numBuckets; idx++ {
		lo, hi := bucketLower(idx), bucketUpper(idx)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", idx, lo, hi)
		}
		if idx == 0 {
			if lo != 0 {
				t.Fatalf("bucket 0 lower = %d, want 0", lo)
			}
		} else if lo != prevUpper+1 {
			t.Fatalf("bucket %d: lower %d, want %d (no gap/overlap)", idx, lo, prevUpper+1)
		}
		prevUpper = hi
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(lower=%d) = %d, want %d", lo, got, idx)
		}
		if got := bucketIndex(hi); got != idx {
			t.Fatalf("bucketIndex(upper=%d) = %d, want %d", hi, got, idx)
		}
		// Relative width bound: width/lower ≤ 1/subBuckets for the
		// logarithmic region.
		if lo >= subBuckets {
			width := float64(hi - lo + 1)
			if width/float64(lo) > 1.0/subBuckets+1e-9 {
				t.Fatalf("bucket %d [%d,%d]: relative width %.4f exceeds 1/%d",
					idx, lo, hi, width/float64(lo), subBuckets)
			}
		}
	}
	if prevUpper != math.MaxInt64 {
		// The last buckets cover up through 2^64-1 internally; at
		// minimum the int64 duration range must be covered.
		if prevUpper < math.MaxInt64 {
			t.Fatalf("buckets top out at %d, below MaxInt64", prevUpper)
		}
	}
}

// adversarialDistributions are raw observation sets chosen to stress
// rank extraction: point masses, heavy ties at bucket edges, bimodal
// spikes, geometric spreads, tiny sets.
func adversarialDistributions(rng *rand.Rand) map[string][]int64 {
	dists := map[string][]int64{
		"single":        {42},
		"two":           {1, 1 << 40},
		"all-zero":      make([]int64, 1000),
		"all-same":      repeat(777777, 5000),
		"tiny-values":   {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		"bucket-edges":  nil,
		"bimodal":       nil,
		"geometric":     nil,
		"uniform-large": nil,
	}
	for idx := 0; idx < numBuckets; idx += 7 {
		dists["bucket-edges"] = append(dists["bucket-edges"],
			clampI64(bucketLower(idx)), clampI64(bucketUpper(idx)))
	}
	for i := 0; i < 2000; i++ {
		dists["bimodal"] = append(dists["bimodal"], 100+rng.Int63n(10))
	}
	for i := 0; i < 20; i++ {
		dists["bimodal"] = append(dists["bimodal"], 1e9+rng.Int63n(1e6))
	}
	v := int64(1)
	for i := 0; i < 50; i++ {
		dists["geometric"] = append(dists["geometric"], repeat(v, 1+i%5)...)
		v *= 2
	}
	for i := 0; i < 10000; i++ {
		dists["uniform-large"] = append(dists["uniform-large"], rng.Int63n(1e12))
	}
	return dists
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func clampI64(v uint64) int64 {
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// TestQuantileOracle checks, for every adversarial distribution and
// every quantile of interest, that the true order statistic from a
// sorted-slice oracle falls inside QuantileBounds, and that Quantile's
// point estimate is within one bucket width (≤ 12.5% relative error,
// +1 absolute for the integer floor region).
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, vals := range adversarialDistributions(rng) {
		t.Run(name, func(t *testing.T) {
			h := &Histogram{}
			for _, v := range vals {
				h.Observe(time.Duration(v))
			}
			s := h.Snapshot()
			if s.Count != uint64(len(vals)) {
				t.Fatalf("count = %d, want %d", s.Count, len(vals))
			}
			sorted := append([]int64(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, q := range []float64{0.001, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0} {
				rank := int(math.Ceil(q * float64(len(sorted))))
				if rank < 1 {
					rank = 1
				}
				exact := sorted[rank-1]
				lo, hi := s.QuantileBounds(q)
				if int64(lo) > exact || exact > int64(hi) {
					t.Errorf("q=%g: exact %d outside bounds [%d, %d]", q, exact, lo, hi)
				}
				// Point estimate error bound: one bucket width.
				est := int64(s.Quantile(q))
				if est < exact {
					t.Errorf("q=%g: estimate %d below exact %d (must be upper bound)", q, est, exact)
				}
				if exact >= subBuckets && float64(est-exact) > float64(exact)/subBuckets+1 {
					t.Errorf("q=%g: estimate %d vs exact %d exceeds 12.5%% relative error", q, est, exact)
				}
			}
		})
	}
}

// TestMergeAssociative pins that snapshot merging is associative and
// commutative: (a+b)+c == a+(b+c) == (c+a)+b, bucketwise.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n int, scale int64) *HistSnapshot {
		h := &Histogram{}
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(scale)))
		}
		return h.Snapshot()
	}
	a, b, c := mk(500, 1e6), mk(700, 1e9), mk(300, 1e3)

	clone := func(s *HistSnapshot) *HistSnapshot { cp := *s; return &cp }

	ab := clone(a)
	ab.Merge(b)
	abc1 := clone(ab)
	abc1.Merge(c)

	bc := clone(b)
	bc.Merge(c)
	abc2 := clone(a)
	abc2.Merge(bc)

	ca := clone(c)
	ca.Merge(a)
	abc3 := clone(ca)
	abc3.Merge(b)

	for i, other := range []*HistSnapshot{abc2, abc3} {
		if *abc1 != *other {
			t.Fatalf("merge not associative/commutative (variant %d differs)", i)
		}
	}
	if abc1.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", abc1.Count, a.Count+b.Count+c.Count)
	}
}

// TestSubPhaseDelta pins the temporal-diff use benchsnap relies on: the
// delta between two snapshots of one histogram is exactly the
// observations recorded in between.
func TestSubPhaseDelta(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(1000 + i))
	}
	before := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(time.Duration(1 << 30))
	}
	delta := h.Snapshot().Sub(before)
	if delta.Count != 50 {
		t.Fatalf("delta count = %d, want 50", delta.Count)
	}
	if got := delta.Sum; got != 50*(1<<30) {
		t.Fatalf("delta sum = %d, want %d", got, 50*(1<<30))
	}
	lo, hi := delta.QuantileBounds(0.5)
	if int64(lo) > 1<<30 || 1<<30 > int64(hi) {
		t.Fatalf("delta p50 bounds [%d,%d] exclude the only value", lo, hi)
	}
}

// TestConcurrentObserveSnapshot is the -race hammer: many observers
// against concurrent snapshot readers, then an exact final count.
func TestConcurrentObserveSnapshot(t *testing.T) {
	h := &Histogram{}
	const goroutines = 8
	const perG = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot readers run throughout; intermediate snapshots must be
	// internally consistent (Count == Σ buckets by construction) and
	// monotonically non-decreasing in count.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Count < last {
					t.Error("snapshot count went backwards")
					return
				}
				last = s.Count
				s.Quantile(0.99)
			}
		}()
	}
	var og sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		og.Add(1)
		go func(g int) {
			defer og.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Int63n(1e9)))
			}
		}(g)
	}
	og.Wait()
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*perG {
		t.Fatalf("final count = %d, want %d", got, goroutines*perG)
	}
}

// TestObserveZeroAlloc is the alloc guard: Observe and Counter.Add must
// not allocate — they sit on the serving hit path under the PR 5
// ≤24-alloc budget.
func TestObserveZeroAlloc(t *testing.T) {
	h := &Histogram{}
	var c Counter
	d := 1234 * time.Nanosecond
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(d)
		c.Inc()
	}); n != 0 {
		t.Fatalf("Observe+Inc allocates %.1f times per call, want 0", n)
	}
}

// TestNilTraceSafe pins that the untraced path is free: TraceFrom on a
// bare context returns nil, and nil-receiver methods no-op.
func TestNilTraceSafe(t *testing.T) {
	tr := TraceFrom(context.Background())
	if tr != nil {
		t.Fatalf("TraceFrom(bare ctx) = %v, want nil", tr)
	}
	tr.Observe("x", time.Second) // must not panic
	if got := tr.Stages(); got != nil {
		t.Fatalf("nil trace Stages() = %v, want nil", got)
	}
}

func TestTraceStages(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not return the installed trace")
	}
	tr.Observe("eliminate/unfold", 5*time.Microsecond)
	TraceFrom(ctx).Observe("chain/hop1", 7*time.Microsecond)
	st := tr.Stages()
	if len(st) != 2 || st[0].Name != "eliminate/unfold" || st[1].Dur != 7*time.Microsecond {
		t.Fatalf("stages = %+v", st)
	}
}

// TestWritePrometheus pins the exposition format: summary quantiles,
// _sum/_count, counters, sorted stable output, label joining.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("test_seconds", `route="compose",outcome="hit"`)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	r.Counter("test_events_total", "").Add(3)
	r.Hist("test_plain_seconds", "").Observe(time.Second)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE test_seconds summary\n",
		`test_seconds{route="compose",outcome="hit",quantile="0.5"}`,
		`test_seconds{route="compose",outcome="hit",quantile="0.99"}`,
		`test_seconds{route="compose",outcome="hit",quantile="0.999"}`,
		`test_seconds_sum{route="compose",outcome="hit"} 0.1`,
		`test_seconds_count{route="compose",outcome="hit"} 100`,
		"# TYPE test_events_total counter\n",
		"test_events_total 3\n",
		`test_plain_seconds{quantile="0.5"}`,
		"test_plain_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Deterministic output across renders.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if out != b2.String() {
		t.Error("exposition not deterministic across renders")
	}
}

// TestRegistryGetOrCreate pins that the same (name, labels) pair always
// resolves to the same instrument.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Hist("a", `x="1"`) != r.Hist("a", `x="1"`) {
		t.Fatal("same key resolved to different histograms")
	}
	if r.Hist("a", `x="1"`) == r.Hist("a", `x="2"`) {
		t.Fatal("different labels resolved to the same histogram")
	}
	if r.Counter("c", "") != r.Counter("c", "") {
		t.Fatal("same key resolved to different counters")
	}
}

func BenchmarkObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
