// Package obs is the serving stack's telemetry layer: lock-free
// log-bucketed latency histograms with percentile extraction, cheap
// counters, a process-wide registry rendered in the Prometheus text
// format (stdlib only), and a lightweight per-request trace that rides
// the context plumbing so every layer — HTTP handlers, the compose
// engine, the WAL, the cache — can report stage timings without
// coupling to the server.
//
// Everything on the observation path is allocation-free: Observe is two
// atomic adds into a fixed-size bucket array, Counter.Add is one, and
// Trace lookups are a context value probe. The paper's experiments are
// all about where composition time goes (per-strategy ELIMINATE cost,
// blow-up aborts, chain depth — Figures 2/3/6); this package is what
// lets the serving layer answer the same question per request, in
// production, at zero cost to the cache hit path.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The bucket layout is log-linear (the HdrHistogram scheme): subBuckets
// linear buckets per power of two, so every bucket's width is at most
// 1/subBuckets of its lower bound. With subBits = 3 a recorded value is
// attributed to a bucket whose bounds are within 12.5% of it — tight
// enough that p50/p99/p999 extracted from the buckets bracket the true
// order statistics (the oracle tests pin this), while the whole array
// stays 496 counters (~4 KB) and Observe is branch-light index math.
const (
	subBits    = 3
	subBuckets = 1 << subBits
	// numBuckets covers the full non-negative int64 nanosecond range:
	// indexes 0..subBuckets-1 are exact (value == index), and each
	// further power of two contributes subBuckets buckets.
	numBuckets = (64-subBits)*subBuckets + subBuckets
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - subBits - 1
	return int(exp)<<subBits + int(v>>exp)
}

// bucketUpper returns the largest value mapping to bucket idx.
func bucketUpper(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	exp := uint(idx>>subBits) - 1
	sub := uint64(idx&(subBuckets-1)) | subBuckets
	return (sub+1)<<exp - 1
}

// bucketLower returns the smallest value mapping to bucket idx.
func bucketLower(idx int) uint64 {
	if idx == 0 {
		return 0
	}
	return bucketUpper(idx-1) + 1
}

// Histogram is a fixed-size, lock-free latency histogram. Observe never
// allocates and never blocks: it is two atomic adds, safe from any
// number of goroutines, so it can sit on the cache hit path and inside
// ELIMINATE without perturbing what it measures. The zero value is
// ready to use. Histograms are mergeable (snapshot addition is
// bucketwise), which is what lets a benchmark harness diff phase
// boundaries out of one continuously-recording histogram.
type Histogram struct {
	sum     atomic.Uint64 // nanoseconds; count is derived from buckets
	buckets [numBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current state. Concurrent Observes may land
// between the bucket reads, so a snapshot taken under load is a
// near-point-in-time view, not a linearizable one; at quiescence it is
// exact. Count is the bucket total, so rank arithmetic inside one
// snapshot is always self-consistent.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram's state.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	Buckets [numBuckets]uint64
}

// Merge adds o's observations into s (bucketwise; associative and
// commutative, as the merge tests pin).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Sub returns the observations in s but not in prev — the phase delta
// between two snapshots of one histogram. Counts saturate at zero, so a
// racy pair of snapshots cannot underflow.
func (s *HistSnapshot) Sub(prev *HistSnapshot) *HistSnapshot {
	out := &HistSnapshot{}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	for i := range s.Buckets {
		if s.Buckets[i] > prev.Buckets[i] {
			out.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
			out.Count += out.Buckets[i]
		}
	}
	return out
}

// rank converts a quantile to a 1-based order-statistic rank.
func (s *HistSnapshot) rank(q float64) uint64 {
	r := uint64(math.Ceil(q * float64(s.Count)))
	if r < 1 {
		r = 1
	}
	if r > s.Count {
		r = s.Count
	}
	return r
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the bucket holding the rank-⌈q·n⌉ observation, hence
// within one bucket width (≤ 12.5%) of the exact order statistic. An
// empty snapshot reports 0.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	_, hi := s.QuantileBounds(q)
	return hi
}

// QuantileBounds returns the bucket bounds bracketing the q-quantile:
// the exact order statistic lies in [lo, hi]. The oracle tests verify
// this against a sorted slice of the raw observations.
func (s *HistSnapshot) QuantileBounds(q float64) (lo, hi time.Duration) {
	if s.Count == 0 {
		return 0, 0
	}
	want := s.rank(q)
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= want {
			return time.Duration(bucketLower(i)), time.Duration(bucketUpper(i))
		}
	}
	// Unreachable when Count equals the bucket total (it does by
	// construction), kept as a safe fallback.
	return 0, time.Duration(bucketUpper(numBuckets - 1))
}

// Mean returns the arithmetic mean of the recorded durations.
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}
