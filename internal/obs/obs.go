package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic event counter (blow-up aborts, slow-request
// samples, …). Add is one atomic add; the zero value is ready.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// metricKey identifies one instrument: a metric name plus its rendered
// label set (e.g. `route="compose",outcome="hit"`). Label strings are
// pre-rendered by the caller so lookup is a plain map probe with no
// per-call formatting.
type metricKey struct {
	name   string
	labels string
}

// Registry is a get-or-create store of named instruments plus the
// Prometheus text renderer over all of them. Lookup takes a mutex, so
// callers on hot paths resolve their instruments once (at construction)
// and hold the *Histogram/*Counter pointer; the registry is for
// registration and scraping, never per-observation.
type Registry struct {
	mu       sync.Mutex
	hists    map[metricKey]*Histogram
	counters map[metricKey]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[metricKey]*Histogram),
		counters: make(map[metricKey]*Counter),
	}
}

// Default is the process-wide registry. Package-level Hist/Count and
// the server's /metrics endpoint all use it.
var Default = NewRegistry()

// Hist returns the histogram registered under (name, labels), creating
// it on first use. labels is a pre-rendered Prometheus label body
// (`k="v",k2="v2"`) or "" for none.
func (r *Registry) Hist(name, labels string) *Histogram {
	k := metricKey{name, labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Counter returns the counter registered under (name, labels),
// creating it on first use.
func (r *Registry) Counter(name, labels string) *Counter {
	k := metricKey{name, labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Hist is Default.Hist.
func Hist(name, labels string) *Histogram { return Default.Hist(name, labels) }

// Count is Default.Counter.
func Count(name, labels string) *Counter { return Default.Counter(name, labels) }

// quantiles rendered for every histogram: the ROADMAP's p50/p99/p999.
var promQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"},
	{0.99, "0.99"},
	{0.999, "0.999"},
}

func joinLabels(base, extra string) string {
	if base == "" {
		return "{" + extra + "}"
	}
	return "{" + base + "," + extra + "}"
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format. Histograms render as summaries (pre-computed
// p50/p99/p999 plus _sum/_count, durations in seconds), counters as
// counters. Output is sorted by metric name then label set, so scrapes
// are diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	histKeys := make([]metricKey, 0, len(r.hists))
	for k := range r.hists {
		histKeys = append(histKeys, k)
	}
	counterKeys := make([]metricKey, 0, len(r.counters))
	for k := range r.counters {
		counterKeys = append(counterKeys, k)
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	r.mu.Unlock()

	sortKeys := func(ks []metricKey) {
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].name != ks[j].name {
				return ks[i].name < ks[j].name
			}
			return ks[i].labels < ks[j].labels
		})
	}
	sortKeys(histKeys)
	sortKeys(counterKeys)

	var b strings.Builder
	prevName := ""
	for _, k := range histKeys {
		if k.name != prevName {
			fmt.Fprintf(&b, "# TYPE %s summary\n", k.name)
			prevName = k.name
		}
		s := hists[k].Snapshot()
		for _, pq := range promQuantiles {
			fmt.Fprintf(&b, "%s%s %g\n", k.name,
				joinLabels(k.labels, `quantile="`+pq.label+`"`),
				s.Quantile(pq.q).Seconds())
		}
		suffix := ""
		if k.labels != "" {
			suffix = "{" + k.labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %g\n", k.name, suffix, float64(s.Sum)/1e9)
		fmt.Fprintf(&b, "%s_count%s %d\n", k.name, suffix, s.Count)
	}
	prevName = ""
	for _, k := range counterKeys {
		if k.name != prevName {
			fmt.Fprintf(&b, "# TYPE %s counter\n", k.name)
			prevName = k.name
		}
		suffix := ""
		if k.labels != "" {
			suffix = "{" + k.labels + "}"
		}
		fmt.Fprintf(&b, "%s%s %d\n", k.name, suffix, counters[k].Value())
	}
	io.WriteString(w, b.String())
}
