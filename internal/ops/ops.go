// Package ops registers the derived and extended relational operators used
// throughout the library: equijoin, semijoin, antisemijoin, left outer
// join, and transitive closure. None of these are built into the algorithm;
// they are installed through the operator registry exactly the way the
// paper's §1.3 says user-defined operators are added — a monotonicity
// table, an optional expansion into basic operators, and an optional
// evaluation function.
//
// Importing this package (directly or via the public mapcomp package) makes
// the operators available; the composition core itself knows nothing about
// them.
package ops

import (
	"fmt"

	"mapcomp/internal/algebra"
)

// Operator names registered by this package.
const (
	OpJoin     = "join"     // join[i1,j1,...](E1,E2): equijoin on E1.iK = E2.jK
	OpSemijoin = "semijoin" // semijoin[i1,j1,...](E1,E2): E1 tuples with a match
	OpAntijoin = "antijoin" // antijoin[i1,j1,...](E1,E2): E1 tuples without a match
	OpLojoin   = "lojoin"   // lojoin[i1,j1,...](E1,E2): left outer join (Null padding)
	OpTC       = "tc"       // tc(E): transitive closure of a binary relation
)

func init() {
	registerJoin()
	registerSemijoin()
	registerAntijoin()
	registerLojoin()
	registerTC()
}

// pairs decodes a flattened [i1,j1,i2,j2,...] parameter list.
func pairs(params []int) ([][2]int, error) {
	if len(params)%2 != 0 {
		return nil, fmt.Errorf("ops: join parameters must be column pairs, got %d values", len(params))
	}
	out := make([][2]int, 0, len(params)/2)
	for i := 0; i < len(params); i += 2 {
		out = append(out, [2]int{params[i], params[i+1]})
	}
	return out, nil
}

func checkPairs(ps [][2]int, a1, a2 int) error {
	for _, p := range ps {
		if p[0] < 1 || p[0] > a1 {
			return fmt.Errorf("ops: left join column %d out of range 1..%d", p[0], a1)
		}
		if p[1] < 1 || p[1] > a2 {
			return fmt.Errorf("ops: right join column %d out of range 1..%d", p[1], a2)
		}
	}
	return nil
}

// bothMono is the monotonicity row for operators monotone in all
// arguments, like ∪, ∩ and × in §3.3.
func bothMono(args []algebra.Mono) algebra.Mono {
	out := algebra.MonoI
	for _, a := range args {
		out = algebra.Combine(out, a)
	}
	return out
}

// joinCondition builds the σ condition for an equijoin over a cross
// product where the right operand's columns start at offset.
func joinCondition(ps [][2]int, offset int) algebra.Condition {
	conds := make([]algebra.Condition, 0, len(ps))
	for _, p := range ps {
		conds = append(conds, algebra.EqCols(p[0], offset+p[1]))
	}
	return algebra.AndAll(conds...)
}

func registerJoin() {
	algebra.RegisterOp(&algebra.OpInfo{
		Name:  OpJoin,
		NArgs: 2,
		Arity: func(a []int, params []int) (int, error) {
			ps, err := pairs(params)
			if err != nil {
				return 0, err
			}
			if err := checkPairs(ps, a[0], a[1]); err != nil {
				return 0, err
			}
			return a[0] + a[1], nil
		},
		Monotone: bothMono,
		Eval: func(args []*algebra.Relation, params []int) (*algebra.Relation, error) {
			ps, err := pairs(params)
			if err != nil {
				return nil, err
			}
			out := algebra.NewRelation(args[0].Arity() + args[1].Arity())
			args[0].Each(func(l algebra.Tuple) bool {
				args[1].Each(func(r algebra.Tuple) bool {
					if pairsMatch(ps, l, r) {
						out.Add(l.Concat(r))
					}
					return true
				})
				return true
			})
			return out, nil
		},
	})
	// join[i,j](E1,E2) = sel[#i=#(a1+j)](E1 * E2); the join operator is
	// "viewed as a derived operator formed from ×, π, and σ" (§2).
	algebra.RegisterDesugar(OpJoin, func(params []int, args []algebra.Expr, arities []int) (algebra.Expr, bool) {
		ps, err := pairs(params)
		if err != nil {
			return nil, false
		}
		return algebra.Select{
			Cond: joinCondition(ps, arities[0]),
			E:    algebra.Cross{L: args[0], R: args[1]},
		}, true
	})
}

func registerSemijoin() {
	algebra.RegisterOp(&algebra.OpInfo{
		Name:  OpSemijoin,
		NArgs: 2,
		Arity: func(a []int, params []int) (int, error) {
			ps, err := pairs(params)
			if err != nil {
				return 0, err
			}
			if err := checkPairs(ps, a[0], a[1]); err != nil {
				return 0, err
			}
			return a[0], nil
		},
		Monotone: bothMono, // semijoin is monotone in both arguments (§1.3)
		Eval: func(args []*algebra.Relation, params []int) (*algebra.Relation, error) {
			ps, err := pairs(params)
			if err != nil {
				return nil, err
			}
			out := algebra.NewRelation(args[0].Arity())
			args[0].Each(func(l algebra.Tuple) bool {
				match := false
				args[1].Each(func(r algebra.Tuple) bool {
					if pairsMatch(ps, l, r) {
						match = true
						return false
					}
					return true
				})
				if match {
					out.Add(l)
				}
				return true
			})
			return out, nil
		},
	})
	// semijoin[i,j](E1,E2) = proj[1..a1](sel[...](E1 * E2))
	algebra.RegisterDesugar(OpSemijoin, func(params []int, args []algebra.Expr, arities []int) (algebra.Expr, bool) {
		ps, err := pairs(params)
		if err != nil {
			return nil, false
		}
		return algebra.Project{
			Cols: algebra.Seq(1, arities[0]),
			E: algebra.Select{
				Cond: joinCondition(ps, arities[0]),
				E:    algebra.Cross{L: args[0], R: args[1]},
			},
		}, true
	})
}

func registerAntijoin() {
	algebra.RegisterOp(&algebra.OpInfo{
		Name:  OpAntijoin,
		NArgs: 2,
		Arity: func(a []int, params []int) (int, error) {
			ps, err := pairs(params)
			if err != nil {
				return 0, err
			}
			if err := checkPairs(ps, a[0], a[1]); err != nil {
				return 0, err
			}
			return a[0], nil
		},
		// Anti-semijoin is monotone in its first argument and
		// anti-monotone in its second, like set difference (§1.3).
		Monotone: func(args []algebra.Mono) algebra.Mono {
			return algebra.Combine(args[0], args[1].Flip())
		},
		Eval: func(args []*algebra.Relation, params []int) (*algebra.Relation, error) {
			ps, err := pairs(params)
			if err != nil {
				return nil, err
			}
			out := algebra.NewRelation(args[0].Arity())
			args[0].Each(func(l algebra.Tuple) bool {
				match := false
				args[1].Each(func(r algebra.Tuple) bool {
					if pairsMatch(ps, l, r) {
						match = true
						return false
					}
					return true
				})
				if !match {
					out.Add(l)
				}
				return true
			})
			return out, nil
		},
	})
	// antijoin[ps](E1,E2) = E1 - semijoin[ps](E1,E2)
	algebra.RegisterDesugar(OpAntijoin, func(params []int, args []algebra.Expr, arities []int) (algebra.Expr, bool) {
		return algebra.Diff{
			L: args[0],
			R: algebra.App{Op: OpSemijoin, Params: params, Args: args},
		}, true
	})
}

func registerLojoin() {
	algebra.RegisterOp(&algebra.OpInfo{
		Name:  OpLojoin,
		NArgs: 2,
		Arity: func(a []int, params []int) (int, error) {
			ps, err := pairs(params)
			if err != nil {
				return 0, err
			}
			if err := checkPairs(ps, a[0], a[1]); err != nil {
				return 0, err
			}
			return a[0] + a[1], nil
		},
		// Left outer join is monotone in its first argument but neither
		// monotone nor anti-monotone in its second (§1.3): growing the
		// second argument can both add matched tuples and retract
		// null-padded ones.
		Monotone: func(args []algebra.Mono) algebra.Mono {
			r := args[1]
			if r != algebra.MonoI {
				r = algebra.MonoU
			}
			return algebra.Combine(args[0], r)
		},
		Eval: func(args []*algebra.Relation, params []int) (*algebra.Relation, error) {
			ps, err := pairs(params)
			if err != nil {
				return nil, err
			}
			a2 := args[1].Arity()
			out := algebra.NewRelation(args[0].Arity() + a2)
			args[0].Each(func(l algebra.Tuple) bool {
				match := false
				args[1].Each(func(r algebra.Tuple) bool {
					if pairsMatch(ps, l, r) {
						match = true
						out.Add(l.Concat(r))
					}
					return true
				})
				if !match {
					pad := make(algebra.Tuple, a2)
					for i := range pad {
						pad[i] = algebra.Null
					}
					out.Add(l.Concat(pad))
				}
				return true
			})
			return out, nil
		},
	})
	// No desugaring: left outer join is not expressible in the basic
	// six operators under pure set semantics without a null construct,
	// so normalization steps that need to look inside it fail — which is
	// exactly the paper's graceful-degradation behaviour.
}

func registerTC() {
	algebra.RegisterOp(&algebra.OpInfo{
		Name:  OpTC,
		NArgs: 1,
		Arity: func(a []int, params []int) (int, error) {
			if a[0] != 2 {
				return 0, fmt.Errorf("ops: tc needs a binary argument, got arity %d", a[0])
			}
			return 2, nil
		},
		// Transitive closure is monotone; the paper's §1.3 recursive
		// example (R ⊆ S, S = tc(S), S ⊆ T) relies on this registration
		// existing while still being impossible to eliminate.
		Monotone: bothMono,
		Eval: func(args []*algebra.Relation, params []int) (*algebra.Relation, error) {
			cur := args[0].Clone()
			for {
				next := cur.Clone()
				cur.Each(func(a algebra.Tuple) bool {
					cur.Each(func(b algebra.Tuple) bool {
						if a[1] == b[0] {
							next.Add(algebra.Tuple{a[0], b[1]})
						}
						return true
					})
					return true
				})
				if next.Len() == cur.Len() {
					return cur, nil
				}
				cur = next
			}
		},
	})
	// No desugaring: transitive closure is not first-order expressible.
}

func pairsMatch(ps [][2]int, l, r algebra.Tuple) bool {
	for _, p := range ps {
		if l[p[0]-1] != r[p[1]-1] {
			return false
		}
	}
	return true
}

// Join builds join[on pairs](l, r); on is a flattened [i1,j1,...] list.
func Join(l, r algebra.Expr, on ...int) algebra.Expr {
	return algebra.App{Op: OpJoin, Params: on, Args: []algebra.Expr{l, r}}
}

// Semijoin builds semijoin[on](l, r).
func Semijoin(l, r algebra.Expr, on ...int) algebra.Expr {
	return algebra.App{Op: OpSemijoin, Params: on, Args: []algebra.Expr{l, r}}
}

// Antijoin builds antijoin[on](l, r).
func Antijoin(l, r algebra.Expr, on ...int) algebra.Expr {
	return algebra.App{Op: OpAntijoin, Params: on, Args: []algebra.Expr{l, r}}
}

// Lojoin builds lojoin[on](l, r).
func Lojoin(l, r algebra.Expr, on ...int) algebra.Expr {
	return algebra.App{Op: OpLojoin, Params: on, Args: []algebra.Expr{l, r}}
}

// TC builds tc(e).
func TC(e algebra.Expr) algebra.Expr {
	return algebra.App{Op: OpTC, Args: []algebra.Expr{e}}
}
