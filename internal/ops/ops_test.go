package ops

import (
	"testing"

	"mapcomp/internal/algebra"
)

func TestRegistrations(t *testing.T) {
	for _, name := range []string{OpJoin, OpSemijoin, OpAntijoin, OpLojoin, OpTC} {
		if algebra.LookupOp(name) == nil {
			t.Errorf("%s not registered", name)
		}
	}
}

func TestArities(t *testing.T) {
	sig := algebra.NewSignature("R", 2, "S", 3, "E", 2)
	cases := []struct {
		e    algebra.Expr
		want int
	}{
		{Join(algebra.R("R"), algebra.R("S"), 1, 1), 5},
		{Semijoin(algebra.R("R"), algebra.R("S"), 1, 1), 2},
		{Antijoin(algebra.R("R"), algebra.R("S"), 2, 3), 2},
		{Lojoin(algebra.R("R"), algebra.R("S"), 1, 1), 5},
		{TC(algebra.R("E")), 2},
	}
	for _, c := range cases {
		got, err := algebra.Arity(c.e, sig)
		if err != nil {
			t.Errorf("Arity(%s): %v", c.e, err)
			continue
		}
		if got != c.want {
			t.Errorf("Arity(%s) = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestArityErrors(t *testing.T) {
	sig := algebra.NewSignature("R", 2, "S", 3)
	bad := []algebra.Expr{
		Join(algebra.R("R"), algebra.R("S"), 1),    // odd parameter count
		Join(algebra.R("R"), algebra.R("S"), 9, 1), // column out of range
		TC(algebra.R("S")),                         // tc needs binary input
	}
	for _, e := range bad {
		if _, err := algebra.Arity(e, sig); err == nil {
			t.Errorf("Arity(%s) succeeded, want error", e)
		}
	}
}

func TestMonotonicityTables(t *testing.T) {
	m, i := algebra.MonoM, algebra.MonoI
	cases := []struct {
		op   string
		args []algebra.Mono
		want algebra.Mono
	}{
		{OpJoin, []algebra.Mono{m, i}, algebra.MonoM},
		{OpJoin, []algebra.Mono{m, m}, algebra.MonoM},
		{OpSemijoin, []algebra.Mono{i, m}, algebra.MonoM},
		{OpAntijoin, []algebra.Mono{m, i}, algebra.MonoM},
		{OpAntijoin, []algebra.Mono{i, m}, algebra.MonoA},
		{OpAntijoin, []algebra.Mono{m, m}, algebra.MonoU},
		{OpLojoin, []algebra.Mono{m, i}, algebra.MonoM},
		{OpLojoin, []algebra.Mono{i, m}, algebra.MonoU},
		{OpTC, []algebra.Mono{m}, algebra.MonoM},
	}
	for _, c := range cases {
		info := algebra.LookupOp(c.op)
		if got := info.Monotone(c.args); got != c.want {
			t.Errorf("%s%v = %s, want %s", c.op, c.args, got, c.want)
		}
	}
}

// TestDesugarEquivalence checks that each operator's expansion matches its
// direct evaluation on a concrete instance.
func TestDesugarEquivalence(t *testing.T) {
	sig := algebra.NewSignature("R", 2, "S", 2)
	rels := map[string]*algebra.Relation{
		"R": algebra.NewRelation(2),
		"S": algebra.NewRelation(2),
	}
	rels["R"].Add(algebra.Tuple{"a", "b"})
	rels["R"].Add(algebra.Tuple{"c", "d"})
	rels["S"].Add(algebra.Tuple{"a", "x"})

	for _, e := range []algebra.Expr{
		Join(algebra.R("R"), algebra.R("S"), 1, 1),
		Semijoin(algebra.R("R"), algebra.R("S"), 1, 1),
		Antijoin(algebra.R("R"), algebra.R("S"), 1, 1),
	} {
		expanded, ok := algebra.Desugar(e, sig)
		if !ok {
			t.Errorf("Desugar(%s) failed", e)
			continue
		}
		direct := evalHere(t, e, rels)
		exp := evalHere(t, algebra.DesugarAll(expanded, sig), rels)
		if !direct.EqualTo(exp) {
			t.Errorf("%s: direct %s != expanded %s", e, direct, exp)
		}
	}
	// lojoin and tc have no expansion, by design.
	if _, ok := algebra.Desugar(Lojoin(algebra.R("R"), algebra.R("S"), 1, 1), sig); ok {
		t.Error("lojoin should have no expansion")
	}
	if _, ok := algebra.Desugar(TC(algebra.R("R")), sig); ok {
		t.Error("tc should have no expansion")
	}
}

// evalHere is a minimal evaluator for this package's tests (the full
// engine lives in internal/eval, which depends on this package's
// registrations and would create an import cycle in tests).
func evalHere(t *testing.T, e algebra.Expr, rels map[string]*algebra.Relation) *algebra.Relation {
	t.Helper()
	switch e := e.(type) {
	case algebra.Rel:
		return rels[e.Name]
	case algebra.Cross:
		l, r := evalHere(t, e.L, rels), evalHere(t, e.R, rels)
		out := algebra.NewRelation(l.Arity() + r.Arity())
		l.Each(func(a algebra.Tuple) bool {
			r.Each(func(b algebra.Tuple) bool { out.Add(a.Concat(b)); return true })
			return true
		})
		return out
	case algebra.Diff:
		l, r := evalHere(t, e.L, rels), evalHere(t, e.R, rels)
		out := algebra.NewRelation(l.Arity())
		l.Each(func(a algebra.Tuple) bool {
			if !r.Has(a) {
				out.Add(a)
			}
			return true
		})
		return out
	case algebra.Select:
		in := evalHere(t, e.E, rels)
		out := algebra.NewRelation(in.Arity())
		in.Each(func(a algebra.Tuple) bool {
			ok, err := algebra.EvalCond(e.Cond, a)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				out.Add(a)
			}
			return true
		})
		return out
	case algebra.Project:
		in := evalHere(t, e.E, rels)
		out := algebra.NewRelation(len(e.Cols))
		in.Each(func(a algebra.Tuple) bool {
			p := make(algebra.Tuple, len(e.Cols))
			for i, c := range e.Cols {
				p[i] = a[c-1]
			}
			out.Add(p)
			return true
		})
		return out
	case algebra.App:
		info := algebra.LookupOp(e.Op)
		args := make([]*algebra.Relation, len(e.Args))
		for i, a := range e.Args {
			args[i] = evalHere(t, a, rels)
		}
		out, err := info.Eval(args, e.Params)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	t.Fatalf("evalHere: unsupported %T", e)
	return nil
}

func TestLojoinPadsWithNull(t *testing.T) {
	r := algebra.NewRelation(1)
	r.Add(algebra.Tuple{"a"})
	s := algebra.NewRelation(1)
	info := algebra.LookupOp(OpLojoin)
	out, err := info.Eval([]*algebra.Relation{r, s}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(algebra.Tuple{"a", algebra.Null}) {
		t.Errorf("lojoin did not pad: %s", out)
	}
}
